(* Tests for the sequential specifications and the linearizability / NRL
   checkers, including a brute-force oracle comparison on random small
   histories. *)

open Linearize

let opref obj op : History.Step.opref = { History.Step.obj; obj_name = "o"; op }

let inv ?(pid = 0) ?(obj = 0) ~op ?(args = [||]) id =
  History.Step.Inv { pid; opref = opref obj op; args; call_id = id }

let res ?(pid = 0) ?(obj = 0) ~op ~ret id =
  History.Step.Res { pid; opref = opref obj op; ret; call_id = id; persisted = None }

let lin = function Checker.Linearizable _ -> true | Checker.Not_linearizable _ -> false

let check_reg h = lin (Checker.check_object ~spec:(Spec.register ()) ~nprocs:2 (History.of_list h))

(* {2 Direct checker tests on hand histories} *)

let test_empty_history () =
  Alcotest.(check bool) "empty linearizable" true (check_reg [])

let test_sequential_rw () =
  Alcotest.(check bool) "write then read" true
    (check_reg
       [
         inv ~op:"WRITE" ~args:[| Nvm.Value.Int 1 |] 1;
         res ~op:"WRITE" ~ret:Nvm.Value.ack 1;
         inv ~op:"READ" 2;
         res ~op:"READ" ~ret:(Nvm.Value.Int 1) 2;
       ])

let test_stale_read_rejected () =
  Alcotest.(check bool) "read of old value after write rejected" false
    (check_reg
       [
         inv ~op:"WRITE" ~args:[| Nvm.Value.Int 1 |] 1;
         res ~op:"WRITE" ~ret:Nvm.Value.ack 1;
         inv ~op:"READ" 2;
         res ~op:"READ" ~ret:Nvm.Value.Null 2;
       ])

let test_concurrent_write_read_both_values_ok () =
  (* read concurrent with a write may return old or new value *)
  let h ret =
    [
      inv ~pid:0 ~op:"WRITE" ~args:[| Nvm.Value.Int 1 |] 1;
      inv ~pid:1 ~op:"READ" 2;
      res ~pid:1 ~op:"READ" ~ret 2;
      res ~pid:0 ~op:"WRITE" ~ret:Nvm.Value.ack 1;
    ]
  in
  Alcotest.(check bool) "new value ok" true (check_reg (h (Nvm.Value.Int 1)));
  Alcotest.(check bool) "old value ok" true (check_reg (h Nvm.Value.Null))

let test_pending_write_may_take_effect () =
  (* a write that never responds may still be linearized (completion) *)
  Alcotest.(check bool) "pending write explains read" true
    (check_reg
       [
         inv ~pid:0 ~op:"WRITE" ~args:[| Nvm.Value.Int 1 |] 1;
         inv ~pid:1 ~op:"READ" 2;
         res ~pid:1 ~op:"READ" ~ret:(Nvm.Value.Int 1) 2;
       ])

let test_pending_write_may_be_dropped () =
  Alcotest.(check bool) "pending write may not take effect" true
    (check_reg
       [
         inv ~pid:0 ~op:"WRITE" ~args:[| Nvm.Value.Int 1 |] 1;
         inv ~pid:1 ~op:"READ" 2;
         res ~pid:1 ~op:"READ" ~ret:Nvm.Value.Null 2;
       ])

let test_new_old_new_inversion_rejected () =
  (* reads by one process observing new then old value: classic violation *)
  Alcotest.(check bool) "value inversion rejected" false
    (check_reg
       [
         inv ~pid:0 ~op:"WRITE" ~args:[| Nvm.Value.Int 1 |] 1;
         res ~pid:0 ~op:"WRITE" ~ret:Nvm.Value.ack 1;
         inv ~pid:1 ~op:"READ" 2;
         res ~pid:1 ~op:"READ" ~ret:(Nvm.Value.Int 1) 2;
         inv ~pid:1 ~op:"READ" 3;
         res ~pid:1 ~op:"READ" ~ret:Nvm.Value.Null 3;
       ])

let check_tas h = lin (Checker.check_object ~spec:(Spec.tas ()) ~nprocs:2 (History.of_list h))

let test_tas_single_winner () =
  Alcotest.(check bool) "0 then 1 ok" true
    (check_tas
       [
         inv ~pid:0 ~op:"T&S" 1;
         res ~pid:0 ~op:"T&S" ~ret:(Nvm.Value.Int 0) 1;
         inv ~pid:1 ~op:"T&S" 2;
         res ~pid:1 ~op:"T&S" ~ret:(Nvm.Value.Int 1) 2;
       ]);
  Alcotest.(check bool) "two winners rejected" false
    (check_tas
       [
         inv ~pid:0 ~op:"T&S" 1;
         res ~pid:0 ~op:"T&S" ~ret:(Nvm.Value.Int 0) 1;
         inv ~pid:1 ~op:"T&S" 2;
         res ~pid:1 ~op:"T&S" ~ret:(Nvm.Value.Int 0) 2;
       ]);
  Alcotest.(check bool) "no winner rejected" false
    (check_tas
       [
         inv ~pid:0 ~op:"T&S" 1;
         res ~pid:0 ~op:"T&S" ~ret:(Nvm.Value.Int 1) 1;
         inv ~pid:1 ~op:"T&S" 2;
         res ~pid:1 ~op:"T&S" ~ret:(Nvm.Value.Int 1) 2;
       ])

let check_counter h =
  lin (Checker.check_object ~spec:(Spec.counter ()) ~nprocs:2 (History.of_list h))

let test_counter_spec () =
  Alcotest.(check bool) "inc, read 1" true
    (check_counter
       [
         inv ~op:"INC" 1;
         res ~op:"INC" ~ret:Nvm.Value.ack 1;
         inv ~op:"READ" 2;
         res ~op:"READ" ~ret:(Nvm.Value.Int 1) 2;
       ]);
  Alcotest.(check bool) "inc, read 2 rejected" false
    (check_counter
       [
         inv ~op:"INC" 1;
         res ~op:"INC" ~ret:Nvm.Value.ack 1;
         inv ~op:"READ" 2;
         res ~op:"READ" ~ret:(Nvm.Value.Int 2) 2;
       ])

let test_cas_spec_transitions () =
  let s = (Spec.cas ()).Spec.initial ~nprocs:2 in
  (match s.Spec.apply ~pid:0 ~op:"CAS" ~args:[| Nvm.Value.Null; Nvm.Value.Int 1 |] with
  | [ (Nvm.Value.Bool true, s') ] -> (
    match s'.Spec.apply ~pid:1 ~op:"CAS" ~args:[| Nvm.Value.Null; Nvm.Value.Int 2 |] with
    | [ (Nvm.Value.Bool false, _) ] -> ()
    | _ -> Alcotest.fail "second CAS from stale old should fail")
  | _ -> Alcotest.fail "first CAS should succeed");
  match s.Spec.apply ~pid:0 ~op:"READ" ~args:[||] with
  | [ (Nvm.Value.Null, _) ] -> ()
  | _ -> Alcotest.fail "READ of initial value"

let test_max_register_spec () =
  let s = (Spec.max_register ()).Spec.initial ~nprocs:2 in
  match s.Spec.apply ~pid:0 ~op:"WRITE_MAX" ~args:[| Nvm.Value.Int 5 |] with
  | [ (_, s') ] -> (
    match s'.Spec.apply ~pid:0 ~op:"WRITE_MAX" ~args:[| Nvm.Value.Int 3 |] with
    | [ (_, s'') ] -> (
      match s''.Spec.apply ~pid:0 ~op:"READ" ~args:[||] with
      | [ (Nvm.Value.Int 5, _) ] -> ()
      | _ -> Alcotest.fail "max should be 5")
    | _ -> Alcotest.fail "write_max 3")
  | _ -> Alcotest.fail "write_max 5"

let test_nrl_rejects_malformed () =
  (* recovery step without crash: fails recoverable well-formedness *)
  let h =
    History.of_list [ inv ~op:"READ" 1; History.Step.Rec { pid = 0 }; res ~op:"READ" ~ret:Nvm.Value.Null 1 ]
  in
  let r = Nrl.check ~spec_for:(fun _ -> Some (Spec.register ())) ~nprocs:1 h in
  Alcotest.(check bool) "rejected" false (Nrl.ok r)

let test_strictness_detection () =
  let h =
    History.of_list
      [
        inv ~op:"READ" 1;
        History.Step.Res
          { pid = 0; opref = opref 0 "READ"; ret = Nvm.Value.Int 0; call_id = 1; persisted = Some false };
      ]
  in
  Alcotest.(check int) "one strictness violation" 1 (List.length (Nrl.strictness_violations h))

(* {2 Brute-force oracle comparison}

   Generate small random register histories (2 processes, <= 5 ops, random
   values from a tiny domain so collisions and violations are common) and
   compare the checker's verdict with an exhaustive enumeration of
   linearization orders. *)

type bop = {
  b_pid : int;
  b_op : string;
  b_arg : int option;
  b_ret : Nvm.Value.t option;  (* None = pending *)
  b_inv : int;
  b_res : int;  (* max_int if pending *)
}

let brute_force_linearizable ops =
  let n = List.length ops in
  let arr = Array.of_list ops in
  (* choose a subset of pending ops to include, a permutation of included
     ops, check real-time order + register semantics *)
  let rec perms = function
    | [] -> [ [] ]
    | l -> List.concat_map (fun x -> List.map (fun p -> x :: p) (perms (List.filter (( != ) x) l))) l
  in
  let indices = List.init n Fun.id in
  let completed, pending = List.partition (fun i -> arr.(i).b_ret <> None) indices in
  let rec subsets = function
    | [] -> [ [] ]
    | x :: tl ->
      let s = subsets tl in
      s @ List.map (fun ss -> x :: ss) s
  in
  List.exists
    (fun pending_subset ->
      let included = completed @ pending_subset in
      List.exists
        (fun order ->
          (* real-time: if a.res < b.inv then a before b in order *)
          let pos = Hashtbl.create 8 in
          List.iteri (fun k i -> Hashtbl.replace pos i k) order;
          let respects =
            List.for_all
              (fun a ->
                List.for_all
                  (fun b ->
                    a = b
                    || arr.(a).b_res >= arr.(b).b_inv
                    || Hashtbl.find pos a < Hashtbl.find pos b)
                  included)
              included
          in
          respects
          &&
          (* replay register semantics *)
          let state = ref Nvm.Value.Null in
          List.for_all
            (fun i ->
              let o = arr.(i) in
              match o.b_op, o.b_arg with
              | "WRITE", Some v ->
                state := Nvm.Value.Int v;
                (match o.b_ret with
                | None -> true
                | Some r -> Nvm.Value.equal r Nvm.Value.ack)
              | "READ", _ -> (
                match o.b_ret with
                | None -> true
                | Some r -> Nvm.Value.equal r !state)
              | _ -> false)
            order)
        (perms included))
    (subsets pending)

let history_of_bops ops =
  (* events sorted by time; ties broken inv-before-res deterministically *)
  let events =
    List.concat_map
      (fun (i, o) ->
        let args =
          match o.b_arg with Some v -> [| Nvm.Value.Int v |] | None -> [||]
        in
        let iv = (o.b_inv, 0, inv ~pid:o.b_pid ~op:o.b_op ~args i) in
        match o.b_ret with
        | Some r -> [ iv; (o.b_res, 1, res ~pid:o.b_pid ~op:o.b_op ~ret:r i) ]
        | None -> [ iv ])
      (List.mapi (fun i o -> (i, o)) ops)
  in
  History.of_list
    (List.map (fun (_, _, s) -> s)
       (List.sort (fun (t1, k1, _) (t2, k2, _) -> compare (t1, k1) (t2, k2)) events))

let bops_gen =
  let open QCheck2.Gen in
  let op_gen pid slot =
    let* is_write = bool in
    let* arg = int_range 1 3 in
    let* ret_kind = int_range 0 3 in
    let* len = int_range 1 4 in
    let b_inv = slot * 3 in
    let b_res = b_inv + len in
    return
      (if is_write then
         {
           b_pid = pid;
           b_op = "WRITE";
           b_arg = Some arg;
           b_ret = (if ret_kind = 0 then None else Some Nvm.Value.ack);
           b_inv;
           b_res = (if ret_kind = 0 then max_int else b_res);
         }
       else
         {
           b_pid = pid;
           b_op = "READ";
           b_arg = None;
           b_ret =
             (match ret_kind with
             | 0 -> None
             | 1 -> Some Nvm.Value.Null
             | k -> Some (Nvm.Value.Int (k - 1)));
           b_inv;
           b_res = (if ret_kind = 0 then max_int else b_res);
         })
  in
  let* n0 = int_range 1 3 in
  let* n1 = int_range 1 2 in
  let* ops0 =
    flatten_l (List.init n0 (fun s -> op_gen 0 s))
  in
  let* ops1 = flatten_l (List.init n1 (fun s -> op_gen 1 s)) in
  (* per-process sequential: make invocations follow previous responses *)
  let seq ops =
    let rec fix t = function
      | [] -> []
      | o :: tl ->
        let b_inv = max o.b_inv t in
        let b_res = if o.b_ret = None then max_int else b_inv + max 1 (o.b_res - o.b_inv) in
        let o = { o with b_inv; b_res } in
        o :: fix (if b_res = max_int then b_inv + 100 else b_res) tl
    in
    fix 0 ops
  in
  (* at most one pending op per process: drop ops after a pending one *)
  let truncate ops =
    let rec go = function
      | [] -> []
      | o :: _ when o.b_ret = None -> [ o ]
      | o :: tl -> o :: go tl
    in
    go ops
  in
  return (truncate (seq ops0) @ truncate (seq ops1))

let prop_checker_matches_bruteforce =
  QCheck2.Test.make ~name:"WGL checker agrees with brute force on register histories"
    ~count:400 bops_gen (fun ops ->
      let h = history_of_bops ops in
      let expected = brute_force_linearizable ops in
      let got =
        lin (Checker.check_object ~spec:(Spec.register ()) ~nprocs:2 h)
      in
      expected = got)

(* the structural (bitset-words, spec-state) memo key must not change any
   verdict: cross-check the memoised search against the memo-free one *)
let prop_memo_verdicts_identical =
  QCheck2.Test.make ~name:"structural memo key: memoised = unmemoised verdicts" ~count:400
    bops_gen (fun ops ->
      let h = history_of_bops ops in
      lin (Checker.check_object ~spec:(Spec.register ()) ~nprocs:2 h)
      = lin (Checker.check_object ~memo:false ~spec:(Spec.register ()) ~nprocs:2 h))

let test_memo_verdicts_on_hand_histories () =
  let agree ~spec h =
    let h = History.of_list h in
    Alcotest.(check bool) "memoised = unmemoised"
      (lin (Checker.check_object ~memo:false ~spec ~nprocs:2 h))
      (lin (Checker.check_object ~spec ~nprocs:2 h))
  in
  let reg = Spec.register () in
  agree ~spec:reg [];
  agree ~spec:reg
    [
      inv ~op:"WRITE" ~args:[| Nvm.Value.Int 1 |] 1;
      res ~op:"WRITE" ~ret:Nvm.Value.ack 1;
      inv ~op:"READ" 2;
      res ~op:"READ" ~ret:(Nvm.Value.Int 1) 2;
    ];
  agree ~spec:reg
    [
      inv ~pid:0 ~op:"WRITE" ~args:[| Nvm.Value.Int 1 |] 1;
      res ~pid:0 ~op:"WRITE" ~ret:Nvm.Value.ack 1;
      inv ~pid:1 ~op:"READ" 2;
      res ~pid:1 ~op:"READ" ~ret:(Nvm.Value.Int 1) 2;
      inv ~pid:1 ~op:"READ" 3;
      res ~pid:1 ~op:"READ" ~ret:Nvm.Value.Null 3;
    ];
  agree ~spec:(Spec.tas ())
    [
      inv ~pid:0 ~op:"T&S" 1;
      res ~pid:0 ~op:"T&S" ~ret:(Nvm.Value.Int 0) 1;
      inv ~pid:1 ~op:"T&S" 2;
      res ~pid:1 ~op:"T&S" ~ret:(Nvm.Value.Int 0) 2;
    ];
  agree ~spec:(Spec.counter ())
    [
      inv ~op:"INC" 1;
      res ~op:"INC" ~ret:Nvm.Value.ack 1;
      inv ~op:"READ" 2;
      res ~op:"READ" ~ret:(Nvm.Value.Int 1) 2;
    ]

(* {2 Model-based spec properties: replay random op sequences against
   plain OCaml reference structures} *)

let spec_vs_model ~spec ~model_init ~model_apply ops =
  let rec go st model = function
    | [] -> true
    | (op, args) :: tl -> (
      match st.Spec.apply ~pid:0 ~op ~args with
      | [ (ret, st') ] -> (
        match model_apply model op args with
        | Some (mret, model') -> Nvm.Value.equal ret mret && go st' model' tl
        | None -> false)
      | _ -> false)
  in
  go (spec.Spec.initial ~nprocs:1) model_init ops

let stack_model_apply l op args =
  match op, l with
  | "PUSH", _ -> Some (Nvm.Value.ack, args.(0) :: l)
  | "POP", [] -> Some (Nvm.Value.Str "empty", [])
  | "POP", h :: t -> Some (h, t)
  | "PEEK", [] -> Some (Nvm.Value.Str "empty", l)
  | "PEEK", h :: _ -> Some (h, l)
  | _ -> None

let queue_model_apply l op args =
  match op, l with
  | "ENQ", _ -> Some (Nvm.Value.ack, l @ [ args.(0) ])
  | "DEQ", [] -> Some (Nvm.Value.Str "empty", [])
  | "DEQ", h :: t -> Some (h, t)
  | "FRONT", [] -> Some (Nvm.Value.Str "empty", l)
  | "FRONT", h :: _ -> Some (h, l)
  | _ -> None

let container_ops_gen names =
  QCheck2.Gen.(
    list_size (int_range 1 25)
      (let* k = int_range 0 (List.length names - 1) in
       let* v = int_range 1 9 in
       let op = List.nth names k in
       return (op, if op = "PUSH" || op = "ENQ" then [| Nvm.Value.Int v |] else [||])))

let prop_stack_spec_model =
  QCheck2.Test.make ~name:"stack spec matches list model" ~count:200
    (container_ops_gen [ "PUSH"; "POP"; "PEEK" ])
    (fun ops ->
      spec_vs_model ~spec:(Spec.stack ()) ~model_init:[] ~model_apply:stack_model_apply ops)

let prop_queue_spec_model =
  QCheck2.Test.make ~name:"queue spec matches list model" ~count:200
    (container_ops_gen [ "ENQ"; "DEQ"; "FRONT" ])
    (fun ops ->
      spec_vs_model ~spec:(Spec.queue ()) ~model_init:[] ~model_apply:queue_model_apply ops)

let prop_counter_spec_model =
  QCheck2.Test.make ~name:"counter spec matches int model" ~count:200
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 1 25)
       (QCheck2.Gen.map (fun b -> ((if b then "INC" else "READ"), [||])) QCheck2.Gen.bool))
    (fun ops ->
      spec_vs_model ~spec:(Spec.counter ()) ~model_init:0
        ~model_apply:(fun n op _ ->
          match op with
          | "INC" -> Some (Nvm.Value.ack, n + 1)
          | "READ" -> Some (Nvm.Value.Int n, n)
          | _ -> None)
        ops)

let test_slot_allocator_nondet () =
  let spec = Spec.slot_allocator ~k:3 () in
  let st = spec.Spec.initial ~nprocs:2 in
  match st.Spec.apply ~pid:0 ~op:"ELECT" ~args:[||] with
  | outcomes ->
    Alcotest.(check int) "three possible slots initially" 3 (List.length outcomes);
    (* electing from a state where slot 0 is taken leaves two choices *)
    let _, st' = List.hd outcomes in
    Alcotest.(check int) "two choices next" 2
      (List.length (st'.Spec.apply ~pid:1 ~op:"ELECT" ~args:[||]))

(* checker vs the machine: histories the simulator produces for the
   counter must check out; the same history with a READ response bumped
   beyond the number of INCs must be rejected *)
let prop_checker_on_machine_histories =
  QCheck2.Test.make ~name:"checker accepts machine histories, rejects corrupted ones"
    ~count:40 (QCheck2.Gen.int_range 1 100_000) (fun seed ->
      let scen = Workload.Scenarios.counter ~nprocs:2 ~ops:4 ~inc_ratio:0.6 () in
      let sim, r = Workload.Trial.run ~seed ~crash_prob:0.05 scen in
      if not r.Workload.Trial.nrl_ok then false
      else begin
        let h = History.n_of (Machine.Sim.history sim) in
        let events =
          History.filter
            (function
              | History.Step.Inv { opref = { History.Step.obj = o; _ }; _ }
              | History.Step.Res { opref = { History.Step.obj = o; _ }; _ } ->
                (* the counter is the last-registered object of the scenario *)
                o = List.fold_left max 0 (History.objects h)
              | _ -> false)
            h
        in
        let corrupt =
          Array.map
            (function
              | History.Step.Res ({ opref = { History.Step.op = "READ"; _ }; _ } as r) ->
                History.Step.Res { r with ret = Nvm.Value.Int 999 }
              | s -> s)
            events
        in
        let had_read =
          Array.exists
            (function
              | History.Step.Res { opref = { History.Step.op = "READ"; _ }; _ } -> true
              | _ -> false)
            events
        in
        let verdict h = lin (Checker.check_object ~spec:(Spec.counter ()) ~nprocs:2 h) in
        verdict events && ((not had_read) || not (verdict corrupt))
      end)

(* {2 Pending operations that must be dropped}

   Definition 2's completions allow a pending operation to be completed
   with some legal response *or* removed.  Every built-in specification
   is total (any operation is legal in any state), so only completion is
   ever exercised by the scenario tests; a one-shot gate — FIRE succeeds
   exactly once, and nothing is legal afterwards — makes dropping the
   only way to linearize. *)

let gate_spec () =
  let spent =
    { Spec.apply = (fun ~pid:_ ~op:_ ~args:_ -> []); repr = Nvm.Value.Int 1 }
  in
  let armed =
    {
      Spec.apply =
        (fun ~pid:_ ~op ~args:_ ->
          match op with "FIRE" -> [ (Nvm.Value.ack, spent) ] | _ -> []);
      repr = Nvm.Value.Int 0;
    }
  in
  { Spec.spec_name = "one-shot gate"; initial = (fun ~nprocs:_ -> armed) }

let check_gate ~memo h =
  lin (Checker.check_object ~memo ~spec:(gate_spec ()) ~nprocs:2 (History.of_list h))

let test_pending_op_must_be_dropped () =
  (* p1's FIRE never responds and can be appended nowhere (the gate is
     spent by p0's completed FIRE): the checker must drop it, with and
     without memoisation *)
  let h =
    [
      inv ~pid:0 ~op:"FIRE" 1;
      res ~pid:0 ~op:"FIRE" ~ret:Nvm.Value.ack 1;
      inv ~pid:1 ~op:"FIRE" 2;
    ]
  in
  Alcotest.(check bool) "dropped, memoised" true (check_gate ~memo:true h);
  Alcotest.(check bool) "dropped, unmemoised" true (check_gate ~memo:false h);
  (* sanity: the same history with p1's FIRE completed is rejected *)
  Alcotest.(check bool) "two completed fires rejected" false
    (check_gate ~memo:true (h @ [ res ~pid:1 ~op:"FIRE" ~ret:Nvm.Value.ack 2 ]))

let test_pending_op_dropped_after_speculation () =
  (* p1's pending FIRE is invoked *before* p0's, so the search may
     speculatively linearize it first — which strands p0's completed
     FIRE.  It must backtrack to the drop branch, not fail. *)
  let h =
    [
      inv ~pid:1 ~op:"FIRE" 2;
      inv ~pid:0 ~op:"FIRE" 1;
      res ~pid:0 ~op:"FIRE" ~ret:Nvm.Value.ack 1;
    ]
  in
  Alcotest.(check bool) "backtracks to dropping, memoised" true (check_gate ~memo:true h);
  Alcotest.(check bool) "backtracks to dropping, unmemoised" true
    (check_gate ~memo:false h)

let test_two_pendings_one_droppable () =
  (* two pending FIREs, no completed one: linearizable only because the
     checker may complete one and drop the other (completing both is
     illegal) *)
  let h = [ inv ~pid:0 ~op:"FIRE" 1; inv ~pid:1 ~op:"FIRE" 2 ] in
  Alcotest.(check bool) "one completed, one dropped" true (check_gate ~memo:true h);
  Alcotest.(check bool) "one completed, one dropped (unmemoised)" true
    (check_gate ~memo:false h)

let suite =
  [
    Alcotest.test_case "empty history" `Quick test_empty_history;
    Alcotest.test_case "sequential write/read" `Quick test_sequential_rw;
    Alcotest.test_case "stale read rejected" `Quick test_stale_read_rejected;
    Alcotest.test_case "concurrent write/read" `Quick test_concurrent_write_read_both_values_ok;
    Alcotest.test_case "pending write takes effect" `Quick test_pending_write_may_take_effect;
    Alcotest.test_case "pending write dropped" `Quick test_pending_write_may_be_dropped;
    Alcotest.test_case "value inversion rejected" `Quick test_new_old_new_inversion_rejected;
    Alcotest.test_case "tas winner uniqueness" `Quick test_tas_single_winner;
    Alcotest.test_case "counter spec" `Quick test_counter_spec;
    Alcotest.test_case "cas spec transitions" `Quick test_cas_spec_transitions;
    Alcotest.test_case "max register spec" `Quick test_max_register_spec;
    Alcotest.test_case "nrl rejects malformed" `Quick test_nrl_rejects_malformed;
    Alcotest.test_case "strictness detection" `Quick test_strictness_detection;
    Alcotest.test_case "slot allocator spec nondeterminism" `Quick test_slot_allocator_nondet;
    Alcotest.test_case "memo key: identical verdicts (hand histories)" `Quick
      test_memo_verdicts_on_hand_histories;
    Alcotest.test_case "pending op must be dropped" `Quick test_pending_op_must_be_dropped;
    Alcotest.test_case "drop after failed speculation" `Quick
      test_pending_op_dropped_after_speculation;
    Alcotest.test_case "two pendings, one droppable" `Quick test_two_pendings_one_droppable;
    QCheck_alcotest.to_alcotest prop_checker_matches_bruteforce;
    QCheck_alcotest.to_alcotest prop_memo_verdicts_identical;
    QCheck_alcotest.to_alcotest prop_stack_spec_model;
    QCheck_alcotest.to_alcotest prop_queue_spec_model;
    QCheck_alcotest.to_alcotest prop_counter_spec_model;
    QCheck_alcotest.to_alcotest prop_checker_on_machine_histories;
  ]
