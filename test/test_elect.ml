(* Tests for the Elect extension: a recoverable slot allocator nested on
   recoverable (strict) TAS objects. *)

open Machine

let nrl_ok sim =
  match Workload.Check.nrl_violation sim with
  | None -> ()
  | Some reason ->
    Fmt.epr "history:@.%a@." History.pp (Sim.history sim);
    Alcotest.failf "NRL violation: %s" reason

let run_rr sim =
  match Schedule.run sim (Schedule.round_robin ()) with
  | Schedule.Completed -> ()
  | _ -> Alcotest.fail "execution did not complete"

let slots_of sim nprocs =
  List.filter_map
    (fun p ->
      match List.assoc_opt "ELECT" (Sim.results sim p) with
      | Some (Nvm.Value.Int i) -> Some i
      | _ -> None)
    (List.init nprocs Fun.id)

let test_elect_crash_free_distinct () =
  let nprocs = 4 in
  let sim = Sim.create ~nprocs () in
  let inst = Objects.Elect_obj.make sim ~name:"E" in
  for p = 0 to nprocs - 1 do
    Sim.set_script sim p [ (inst, "ELECT", Sim.Args [||]) ]
  done;
  run_rr sim;
  nrl_ok sim;
  let slots = slots_of sim nprocs in
  Alcotest.(check int) "everyone elected" nprocs (List.length slots);
  Alcotest.(check int) "all slots distinct" nprocs
    (List.length (List.sort_uniq compare slots));
  List.iter (fun s -> Alcotest.(check bool) "slot in range" true (s >= 0 && s < nprocs)) slots

(* crash after the nested T&S completed but before ELECT consumed its
   (volatile) response: the strictness of T&S saves the day *)
let test_elect_crash_at_completion_boundary () =
  let sim = Sim.create ~seed:61 ~nprocs:2 () in
  let inst = Objects.Elect_obj.make sim ~name:"E" in
  for p = 0 to 1 do
    Sim.set_script sim p [ (inst, "ELECT", Sim.Args [||]) ]
  done;
  (* p0: run until its nested T&S has just completed (stack grew to 2 and
     shrank back to 1) — the response now lives only in a volatile local *)
  let seen_nested = ref false in
  let depth () = List.length (Sim.proc sim 0).Sim.stack in
  while not (!seen_nested && depth () = 1) do
    Sim.step sim 0;
    if depth () = 2 then seen_nested := true
  done;
  Alcotest.(check int) "nested T&S completed" 1 (depth ());
  Sim.crash sim 0;
  Sim.recover sim 0;
  run_rr sim;
  nrl_ok sim;
  let slots = slots_of sim 2 in
  Alcotest.(check int) "both elected" 2 (List.length slots);
  Alcotest.(check int) "distinct slots" 2 (List.length (List.sort_uniq compare slots))

let test_elect_torture () =
  let scen = Workload.Scenarios.elect ~nprocs:3 () in
  let s = Workload.Trial.batch ~crash_prob:0.08 ~max_crashes:5 ~trials:150 scen in
  Alcotest.(check int) "all trials pass NRL" s.Workload.Trial.trials s.Workload.Trial.passed;
  Alcotest.(check bool) "crashes exercised" true (s.Workload.Trial.total_crashes > 30)

let test_elect_strict () =
  let sim = Sim.create ~nprocs:3 () in
  let inst = Objects.Elect_obj.make sim ~name:"E" in
  for p = 0 to 2 do
    Sim.set_script sim p [ (inst, "ELECT", Sim.Args [||]) ]
  done;
  run_rr sim;
  Alcotest.(check int) "ELECT responses persisted before return" 0
    (List.length (Workload.Check.strictness_violations sim))

(* distinctness under randomized crashes, as a property *)
let prop_elect_distinct_slots =
  QCheck2.Test.make ~name:"elect: slots distinct under crashes" ~count:60
    (QCheck2.Gen.int_range 1 1_000_000) (fun seed ->
      let nprocs = 3 in
      let sim = Sim.create ~seed ~nprocs () in
      let inst = Objects.Elect_obj.make sim ~name:"E" in
      for p = 0 to nprocs - 1 do
        Sim.set_script sim p [ (inst, "ELECT", Sim.Args [||]) ]
      done;
      let policy = Schedule.random ~crash_prob:0.1 ~max_crashes:4 ~seed:(seed * 17 + 3) () in
      match Schedule.run ~max_steps:100_000 sim policy with
      | Schedule.Completed ->
        let slots = slots_of sim nprocs in
        List.length slots = nprocs
        && List.length (List.sort_uniq compare slots) = nprocs
      | _ -> QCheck2.assume_fail ())

let suite =
  [
    Alcotest.test_case "elect: distinct slots crash-free" `Quick test_elect_crash_free_distinct;
    Alcotest.test_case "elect: crash at completion boundary" `Quick test_elect_crash_at_completion_boundary;
    Alcotest.test_case "elect: randomized torture" `Slow test_elect_torture;
    Alcotest.test_case "elect: strict responses" `Quick test_elect_strict;
    QCheck_alcotest.to_alcotest prop_elect_distinct_slots;
  ]
