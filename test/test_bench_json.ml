(* The machine-readable benchmark schema (Workload.Bench_json): the
   document CI archives as BENCH_explore.json must parse as JSON and
   carry the fields downstream tooling keys on.  Validated with a small
   self-contained JSON reader (the repo deliberately has no JSON
   dependency). *)

module B = Workload.Bench_json

(* {1 A minimal JSON reader} *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let next () =
    if !pos >= n then raise (Bad "unexpected end of input");
    let c = s.[!pos] in
    incr pos;
    c
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      incr pos;
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    let g = next () in
    if g <> c then raise (Bad (Printf.sprintf "expected %c, got %c at %d" c g !pos))
  in
  let literal lit v =
    String.iter expect lit;
    v
  in
  let string_body () =
    let b = Buffer.create 16 in
    let rec go () =
      match next () with
      | '"' -> Buffer.contents b
      | '\\' ->
        (match next () with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          let h = String.init 4 (fun _ -> next ()) in
          Buffer.add_char b (Char.chr (int_of_string ("0x" ^ h) land 0xff))
        | c -> raise (Bad (Printf.sprintf "bad escape \\%c" c)));
        go ()
      | c -> Buffer.add_char b c; go ()
    in
    go ()
  in
  let number () =
    let start = !pos in
    let numchar = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> numchar c | None -> false) do
      incr pos
    done;
    if !pos = start then raise (Bad "empty number");
    Num (float_of_string (String.sub s start (!pos - start)))
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '"' ->
      expect '"';
      Str (string_body ())
    | Some '{' ->
      expect '{';
      skip_ws ();
      if peek () = Some '}' then (incr pos; Obj [])
      else
        let rec members acc =
          skip_ws ();
          expect '"';
          let k = string_body () in
          skip_ws ();
          expect ':';
          let v = value () in
          skip_ws ();
          match next () with
          | ',' -> members ((k, v) :: acc)
          | '}' -> Obj (List.rev ((k, v) :: acc))
          | c -> raise (Bad (Printf.sprintf "bad object separator %c" c))
        in
        members []
    | Some '[' ->
      expect '[';
      skip_ws ();
      if peek () = Some ']' then (incr pos; Arr [])
      else
        let rec elems acc =
          let v = value () in
          skip_ws ();
          match next () with
          | ',' -> elems (v :: acc)
          | ']' -> Arr (List.rev (v :: acc))
          | c -> raise (Bad (Printf.sprintf "bad array separator %c" c))
        in
        elems []
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | _ -> number ()
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then raise (Bad "trailing garbage");
  v

let field name = function
  | Obj kvs -> (
    match List.assoc_opt name kvs with
    | Some v -> v
    | None -> raise (Bad ("missing field " ^ name)))
  | _ -> raise (Bad "not an object")

let as_arr = function Arr l -> l | _ -> raise (Bad "not an array")
let as_str = function Str s -> s | _ -> raise (Bad "not a string")
let as_num = function Num f -> f | _ -> raise (Bad "not a number")
let as_bool = function Bool b -> b | _ -> raise (Bad "not a bool")

(* {1 A representative document} *)

let sample () =
  {
    B.domains_available = 2;
    ns_per_op =
      [
        { B.ns_section = "T1"; ns_name = "plain \"write\""; ns_ns = 12.5 };
        { B.ns_section = "T4"; ns_name = "machine step only"; ns_ns = nan };
      ];
    persist_events = [ { B.pe_op = "register WRITE"; pe_nprocs = 2; pe_accesses = 3 } ];
    explore =
      [
        {
          B.er_section = "T6";
          er_scenario = "register";
          er_nprocs = 3;
          er_ops = 1;
          er_jobs = 2;
          er_dedup = false;
          er_trail = true;
          er_sym = false;
          er_mode = "check-terminal";
          er_terminals = 45002;
          er_nodes = 265631;
          er_dup = 0;
          er_seconds = 0.5;
        };
        {
          B.er_section = "T7";
          er_scenario = "register";
          er_nprocs = 3;
          er_ops = 1;
          er_jobs = 1;
          er_dedup = false;
          er_trail = false;
          er_sym = true;
          er_mode = "dfs";
          er_terminals = 10;
          er_nodes = 100;
          er_dup = 0;
          er_seconds = 0.;
        };
      ];
  }

let test_parses_and_keys () =
  let doc = parse (B.render (sample ())) in
  Alcotest.(check string) "schema tag" B.schema_version (as_str (field "schema" doc));
  Alcotest.(check int) "domains" 2 (int_of_float (as_num (field "domains_available" doc)));
  let ns = as_arr (field "ns_per_op" doc) in
  Alcotest.(check int) "ns rows survive (array non-empty)" 2 (List.length ns);
  let r0 = List.hd ns in
  Alcotest.(check string) "ns section" "T1" (as_str (field "section" r0));
  Alcotest.(check string) "escaped name round-trips" "plain \"write\""
    (as_str (field "name" r0));
  Alcotest.(check bool) "ns value" true (as_num (field "ns" r0) = 12.5);
  Alcotest.(check bool) "nan becomes null" true (field "ns" (List.nth ns 1) = Null);
  let pe = List.hd (as_arr (field "persist_events" doc)) in
  Alcotest.(check string) "persist op" "register WRITE" (as_str (field "op" pe));
  Alcotest.(check int) "persist accesses" 3 (int_of_float (as_num (field "accesses" pe)))

let test_explore_rows () =
  let doc = parse (B.render (sample ())) in
  let rows = as_arr (field "explore" doc) in
  Alcotest.(check int) "both sections present" 2 (List.length rows);
  let t6 = List.hd rows and t7 = List.nth rows 1 in
  Alcotest.(check string) "T6 tagged" "T6" (as_str (field "section" t6));
  Alcotest.(check bool) "trail recorded" true (as_bool (field "trail" t6));
  Alcotest.(check bool) "symmetry recorded (off)" false (as_bool (field "symmetry" t6));
  Alcotest.(check bool) "symmetry recorded (on)" true (as_bool (field "symmetry" t7));
  Alcotest.(check string) "mode recorded" "check-terminal" (as_str (field "mode" t6));
  Alcotest.(check bool) "nodes/s derived" true
    (Float.abs (as_num (field "nodes_per_sec" t6) -. (265631. /. 0.5)) < 1.);
  Alcotest.(check bool) "terminals/s derived" true
    (Float.abs (as_num (field "terminals_per_sec" t6) -. (45002. /. 0.5)) < 1.);
  Alcotest.(check string) "T7 clone baseline row" "dfs" (as_str (field "mode" t7));
  Alcotest.(check bool) "zero-duration rate is null, not inf" true
    (field "nodes_per_sec" t7 = Null)

let test_empty_arrays_parse () =
  let doc =
    parse
      (B.render
         { B.domains_available = 1; ns_per_op = []; persist_events = []; explore = [] })
  in
  Alcotest.(check int) "empty ns array" 0 (List.length (as_arr (field "ns_per_op" doc)));
  Alcotest.(check int) "empty explore array" 0 (List.length (as_arr (field "explore" doc)))

let suite =
  [
    Alcotest.test_case "document parses; ns and persist rows" `Quick test_parses_and_keys;
    Alcotest.test_case "explore rows carry trail/mode/rates" `Quick test_explore_rows;
    Alcotest.test_case "empty arrays stay valid JSON" `Quick test_empty_arrays_parse;
  ]
