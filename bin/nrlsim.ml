(* nrlsim: command-line driver for the NRL machine.

   Subcommands:
     run      - randomized crash-torture batches over a scenario
     check    - one seeded run with the full history and NRL verdict
     explore  - bounded exhaustive schedule exploration of a small instance
     fuzz     - coverage-guided scenario fuzzing with shrinking and the bug zoo
     theorem  - the Theorem 4 analysis (valency, critical configs, refutation)
     list         - available scenarios
     bench-native - the native-runtime latency/allocation/throughput suite
                    (BENCH_native.json, schema nrl-native/1) *)

open Cmdliner

let scenario_names =
  [
    "register"; "cas"; "tas"; "counter"; "elect"; "faa"; "stack"; "histogram"; "queue"; "max-register";
    "naive-rw-optimistic"; "naive-rw-reexec";
    "naive-cas-optimistic"; "naive-cas-reexec"; "naive-tas";
  ]

let scenario_of_name name ~nprocs ~ops =
  match name with
  | "register" -> Workload.Scenarios.register ~nprocs ~ops ()
  | "cas" -> Workload.Scenarios.cas ~nprocs ~ops ()
  | "tas" -> Workload.Scenarios.tas ~nprocs ()
  | "counter" -> Workload.Scenarios.counter ~nprocs ~ops ()
  | "elect" -> Workload.Scenarios.elect ~nprocs ()
  | "faa" -> Workload.Scenarios.faa ~nprocs ~ops ()
  | "stack" -> Workload.Scenarios.stack ~nprocs ~ops ()
  | "histogram" -> Workload.Scenarios.histogram ~nprocs ~ops ()
  | "queue" -> Workload.Scenarios.queue ~nprocs ~ops ()
  | "max-register" -> Workload.Scenarios.max_register ~nprocs ~ops ()
  | "naive-rw-optimistic" -> Workload.Scenarios.naive_rw ~strategy:`Optimistic ~nprocs ~ops ()
  | "naive-rw-reexec" -> Workload.Scenarios.naive_rw ~strategy:`Reexecute ~nprocs ~ops ()
  | "naive-cas-optimistic" -> Workload.Scenarios.naive_cas ~strategy:`Optimistic ~nprocs ~ops ()
  | "naive-cas-reexec" -> Workload.Scenarios.naive_cas ~strategy:`Reexecute ~nprocs ~ops ()
  | "naive-tas" -> Workload.Scenarios.naive_tas ~nprocs ()
  | other -> invalid_arg (Printf.sprintf "unknown scenario %S (try: nrlsim list)" other)

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Trace every machine decision (very chatty).")

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  if verbose then Logs.Src.set_level Machine.Schedule.src (Some Logs.Debug)

(* common args *)
let scenario_arg =
  let doc = "Scenario name (see $(b,nrlsim list))." in
  Arg.(value & pos 0 string "counter" & info [] ~docv:"SCENARIO" ~doc)

let nprocs_arg =
  Arg.(value & opt int 3 & info [ "n"; "nprocs" ] ~docv:"N" ~doc:"Number of processes.")

let ops_arg =
  Arg.(value & opt int 5 & info [ "ops" ] ~docv:"K" ~doc:"Operations per process.")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let crash_prob_arg =
  Arg.(value & opt float 0.08 & info [ "crash-prob" ] ~docv:"P" ~doc:"Crash probability per step.")

let max_crashes_arg =
  Arg.(value & opt int 6 & info [ "max-crashes" ] ~docv:"C" ~doc:"Crash budget per run.")

let system_crash_arg =
  Arg.(
    value & opt float 0.0
    & info [ "system-crash-prob" ] ~docv:"P"
        ~doc:"Probability of a full-system crash (all processes at once) per step.")

(* observability args, shared by run and explore *)
let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print an end-of-run metrics breakdown (counters, timers, derived rates) to \
           stdout.  Counter values are engine-invariant: identical for every $(b,--jobs) \
           and $(b,--trail) setting.  See docs/observability.md.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write an NDJSON trace (schema nrl-trace/1: config events, phase spans, final \
           metric values) to $(docv).  The schema is documented in docs/observability.md.")

let progress_arg =
  Arg.(
    value & flag
    & info [ "progress" ]
        ~doc:
          "Print a progress line (nodes visited, rate, task completion, crude ETA) to \
           stderr roughly once per second.")

(* [--stats]/[--trace] both want a registry; build one iff either asked *)
let obs_of ~stats ~trace = if stats || trace <> None then Some (Obs.Metrics.create ()) else None

(* end-of-run: dump metrics into the trace, close it, print the summary *)
let obs_finish ?(header = "") ~stats ~tracer obs =
  (match obs, tracer with
  | Some reg, Some tr -> Obs.Trace.metrics tr reg
  | _ -> ());
  Option.iter Obs.Trace.close tracer;
  match obs with
  | Some reg when stats ->
    if header <> "" then Format.printf "%s@." header;
    Format.printf "%a" Obs.Report.pp_summary reg
  | _ -> ()

(* run *)
let run_cmd =
  let trials_arg =
    Arg.(value & opt int 200 & info [ "trials" ] ~docv:"T" ~doc:"Number of trials.")
  in
  let junk_arg =
    let choices = List.map (fun s -> (s, s)) Machine.Junk.strategy_names in
    Arg.(
      value
      & opt (Arg.enum choices) "scramble"
      & info [ "junk" ] ~docv:"STRATEGY"
          ~doc:"Adversarial junk strategy for crash-scrambled locals (see docs/resilience.md).")
  in
  let run name nprocs ops trials seed crash_prob max_crashes system_crash_prob stats trace
      junk =
    let scen = scenario_of_name name ~nprocs ~ops in
    let obs = obs_of ~stats ~trace in
    let tracer = Option.map (fun path -> Obs.Trace.create ~path) trace in
    Option.iter
      (fun tr ->
        Obs.Trace.event tr ~name:"run.config"
          [
            ("scenario", Obs.Trace.Str name);
            ("nprocs", Obs.Trace.Int nprocs);
            ("ops", Obs.Trace.Int ops);
            ("trials", Obs.Trace.Int trials);
            ("seed", Obs.Trace.Int seed);
            ("crash_prob", Obs.Trace.Float crash_prob);
            ("max_crashes", Obs.Trace.Int max_crashes);
          ])
      tracer;
    let t0 = Obs.Clock.now_ns () in
    let s =
      Workload.Trial.batch ~base_seed:seed ~crash_prob ~max_crashes
        ~system_crash_prob ~junk ?obs ~trials scen
    in
    Option.iter
      (fun tr ->
        Obs.Trace.span tr ~name:"run.batch" ~start_ns:t0
          ~dur_ns:(Obs.Clock.now_ns () - t0)
          [
            ("trials", Obs.Trace.Int s.Workload.Trial.trials);
            ("passed", Obs.Trace.Int s.Workload.Trial.passed);
            ("failed", Obs.Trace.Int s.Workload.Trial.failed);
          ])
      tracer;
    Format.printf "%s: %a@." scen.Workload.Trial.scen_name Workload.Trial.pp_summary s;
    obs_finish ~stats ~tracer obs;
    if s.Workload.Trial.failed > 0 then exit 2
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Randomized crash-torture batch with NRL checking")
    Term.(
      const run $ scenario_arg $ nprocs_arg $ ops_arg $ trials_arg $ seed_arg
      $ crash_prob_arg $ max_crashes_arg $ system_crash_arg $ stats_arg $ trace_arg
      $ junk_arg)

(* check *)
let check_cmd =
  let dump_memory_arg =
    Arg.(value & flag & info [ "dump-memory" ] ~doc:"Print the final NVRAM contents.")
  in
  let check name nprocs ops seed crash_prob max_crashes verbose dump_memory =
    setup_logs verbose;
    let scen = scenario_of_name name ~nprocs ~ops in
    let sim, r = Workload.Trial.run ~seed ~crash_prob ~max_crashes scen in
    Format.printf "history:@.%a@." History.pp (Machine.Sim.history sim);
    for p = 0 to nprocs - 1 do
      Format.printf "p%d results: %a@." p
        Fmt.(list ~sep:comma (pair ~sep:(any "=") string Nvm.Value.pp))
        (Machine.Sim.results sim p)
    done;
    Format.printf "steps: %d, crashes: %d@." r.Workload.Trial.steps r.Workload.Trial.crashes;
    if dump_memory then
      Format.printf "NVRAM:@.%a@." Nvm.Memory.pp (Machine.Sim.mem sim);
    Format.printf "NRL: %a@." Linearize.Nrl.pp (Workload.Check.nrl sim);
    if not r.Workload.Trial.nrl_ok then exit 2
  in
  Cmd.v
    (Cmd.info "check" ~doc:"One seeded run with the full history and NRL verdict")
    Term.(
      const check $ scenario_arg $ nprocs_arg $ ops_arg $ seed_arg $ crash_prob_arg
      $ max_crashes_arg $ verbose_arg $ dump_memory_arg)

(* explore *)
let explore_cmd =
  let steps_arg =
    Arg.(value & opt int 100 & info [ "max-steps" ] ~docv:"S" ~doc:"Depth bound.")
  in
  let crashes_arg =
    Arg.(value & opt int 1 & info [ "crashes" ] ~docv:"C" ~doc:"Crash budget (process 0 crashes).")
  in
  let jobs_arg =
    (* an int or the literal "auto" (resolved against the host's domain
       count at startup, so "auto" on a 1-core box skips the parallel
       frontier split entirely) *)
    let jobs_conv =
      let parse = function
        | "auto" -> Ok `Auto
        | s -> (
          match int_of_string_opt s with
          | Some j when j >= 1 -> Ok (`Jobs j)
          | _ -> Error (`Msg (Printf.sprintf "expected a positive integer or 'auto', got %S" s)))
      and print ppf = function
        | `Auto -> Format.pp_print_string ppf "auto"
        | `Jobs j -> Format.pp_print_int ppf j
      in
      Arg.conv (parse, print)
    in
    Arg.(
      value
      & opt jobs_conv (`Jobs 1)
      & info [ "j"; "jobs" ] ~docv:"J"
          ~doc:
            "Explore on $(docv) OCaml domains (subtrees of the schedule tree run \
             concurrently; statistics are identical for every value).  $(b,auto) uses \
             the recommended domain count of this machine.")
  in
  let trail_arg =
    Arg.(
      value
      & opt bool true
      & info [ "trail" ] ~docv:"BOOL"
          ~doc:
            "Branch by in-place backtracking over an undo trail (the default) instead of \
             cloning the machine at every branch point.  Statistics are identical either \
             way; --trail=false is the slower historical baseline.")
  in
  let check_mode_arg =
    let mode_conv =
      Arg.enum [ ("terminal", `Terminal); ("incremental", `Incremental) ]
    in
    Arg.(
      value
      & opt mode_conv `Terminal
      & info [ "check-mode" ] ~docv:"MODE"
          ~doc:
            "$(b,terminal) re-checks the NRL condition on every complete execution from \
             scratch; $(b,incremental) threads checker state down the search so work on \
             shared schedule prefixes is done once.  Verdicts are identical.")
  in
  let dedup_arg =
    Arg.(
      value & flag
      & info [ "dedup" ]
          ~doc:
            "Prune branches that reconverge on an already-visited machine configuration \
             (fingerprint of memory + per-process control state).  Violations found are \
             real; a clean sweep certifies one representative prefix per configuration.")
  in
  let no_symmetry_arg =
    Arg.(
      value & flag
      & info [ "no-symmetry" ]
          ~doc:
            "Disable process-id symmetry reduction.  With $(b,--dedup), fingerprints of \
             symmetric scenarios are normally canonicalised under the detected \
             process-permutation group, deduplicating whole orbits of states (the \
             soundness conditions are checked, never assumed; see docs/model.md).  This \
             flag forces the unquotiented search — verdicts are identical, node/dedup \
             counts differ.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECS"
          ~doc:
            "Wall-clock budget.  When it runs out the search stops with a structured \
             partial verdict (exit code 3) instead of running to completion.")
  in
  let max_nodes_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-nodes" ] ~docv:"N"
          ~doc:"Node budget: stop (exit code 3) after processing $(docv) schedule-tree nodes.")
  in
  let max_visited_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-visited" ] ~docv:"N"
          ~doc:
            "Cap the $(b,--dedup) visited store at $(docv) fingerprints.  Exceeding the \
             cap is a degradation, not an abort: the store is dropped and the sweep \
             continues without pruning.")
  in
  let checkpoint_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Periodically save resumable progress to $(docv) (schema nrl-checkpoint/2, \
             atomic write-then-rename; see docs/resilience.md).  On SIGINT/SIGTERM the \
             run checkpoints and exits 3 instead of losing its work.")
  in
  let checkpoint_interval_arg =
    Arg.(
      value & opt float 5.0
      & info [ "checkpoint-interval" ] ~docv:"SECS"
          ~doc:"Minimum seconds between periodic checkpoint saves.")
  in
  let resume_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ] ~docv:"FILE"
          ~doc:
            "Resume from a checkpoint written by $(b,--checkpoint).  The command line \
             must rebuild the same scenario (same scenario, sizes, bounds, junk \
             strategy); the stamp recorded in the file is checked.  Saving continues to \
             the same file unless $(b,--checkpoint) overrides it.")
  in
  let junk_arg =
    let choices = List.map (fun s -> (s, s)) (Machine.Junk.strategy_names @ [ "all" ]) in
    Arg.(
      value
      & opt (Arg.enum choices) "scramble"
      & info [ "junk" ] ~docv:"STRATEGY"
          ~doc:
            (Printf.sprintf
               "Adversarial junk strategy for crash-scrambled locals: %s, or $(b,all) to \
                run a campaign sweeping every strategy and comparing verdicts."
               (String.concat ", " Machine.Junk.strategy_names)))
  in
  let explore name nprocs ops max_steps max_crashes jobs trail check_mode dedup no_symmetry
      stats_flag trace progress deadline max_nodes max_visited checkpoint
      checkpoint_interval resume junk =
    let jobs_requested = jobs in
    let jobs = match jobs with `Auto -> Machine.Explore.auto_jobs () | `Jobs j -> j in
    let symmetry = not no_symmetry in
    let check_mode_name =
      match check_mode with `Terminal -> "terminal" | `Incremental -> "incremental"
    in
    let mk_check_mode () =
      match check_mode with
      | `Terminal -> `Terminal
      | `Incremental -> `Incremental (Workload.Check.nrl_incremental ())
    in
    let build junk_strategy =
      let sim = Machine.Sim.create ~nprocs () in
      (scenario_of_name name ~nprocs ~ops).Workload.Trial.build sim;
      if junk_strategy <> "scramble" then Machine.Sim.apply_junk_strategy sim junk_strategy;
      sim
    in
    let cfg =
      { Machine.Explore.default_config with max_steps; max_crashes; crash_procs = [ 0 ] }
    in
    (* what --stats reports about the engine configuration: the resolved
       domain fan-out (honest about `auto`) and whether the symmetry
       quotient is active for this scenario *)
    let sym_degree =
      if dedup && symmetry then
        let probe = build (if junk = "all" then "scramble" else junk) in
        Option.map Machine.Fingerprint.Symmetry.degree
          (Machine.Explore.symmetry_group cfg probe)
      else None
    in
    let stats_header =
      if not stats_flag then ""
      else
        Printf.sprintf "engine: jobs=%d%s (domains available: %d); symmetry=%s" jobs
          (match jobs_requested with `Auto -> " (auto)" | `Jobs _ -> "")
          (Machine.Explore.auto_jobs ())
          (match sym_degree with
          | Some d -> Printf.sprintf "on (quotient degree %d)" d
          | None -> if dedup && symmetry then "inactive" else "off")
    in
    let obs = obs_of ~stats:stats_flag ~trace in
    let tracer = Option.map (fun path -> Obs.Trace.create ~path) trace in
    Option.iter
      (fun tr ->
        Obs.Trace.event tr ~name:"explore.config"
          [
            ("scenario", Obs.Trace.Str name);
            ("nprocs", Obs.Trace.Int nprocs);
            ("ops", Obs.Trace.Int ops);
            ("max_steps", Obs.Trace.Int max_steps);
            ("max_crashes", Obs.Trace.Int max_crashes);
            ("jobs", Obs.Trace.Int jobs);
            ("trail", Obs.Trace.Bool trail);
            ("dedup", Obs.Trace.Bool dedup);
            ("symmetry", Obs.Trace.Bool symmetry);
            ("check_mode", Obs.Trace.Str check_mode_name);
            ("junk", Obs.Trace.Str junk);
          ])
      tracer;
    let prog =
      if progress then Some (Obs.Progress.create ~label:"explore" ()) else None
    in
    let budget =
      { Machine.Explore.deadline_s = deadline; max_nodes; max_visited }
    in
    let resilient =
      deadline <> None || max_nodes <> None || max_visited <> None || checkpoint <> None
      || resume <> None
    in
    let t0 = Obs.Clock.now_s () in
    let print_clean stats =
      Format.printf
        "no violation: %d complete executions checked (%d truncated, %d nodes, %d deduped, \
         %d jobs, %.1fs)@."
        stats.Machine.Explore.terminals stats.Machine.Explore.truncated
        stats.Machine.Explore.nodes stats.Machine.Explore.dup jobs
        (Obs.Clock.now_s () -. t0)
    in
    if junk = "all" then begin
      (* campaign mode: one budgeted sweep per strategy, verdicts compared *)
      if checkpoint <> None || resume <> None then begin
        Format.eprintf
          "nrlsim: --junk all is a campaign over independent runs; it cannot be \
           checkpointed or resumed.  Pick one strategy.@.";
        exit 124
      end;
      let verdicts =
        List.map
          (fun strategy ->
            let outcome, stats =
              Machine.Explore.sweep ~cfg ~jobs ~dedup ~trail ~symmetry ?obs ?progress:prog
                ?trace:tracer ~budget ~check_mode:(mk_check_mode ())
                ~check:Workload.Check.nrl_violation (build strategy)
            in
            let verdict =
              match outcome with
              | Machine.Explore.Clean -> "clean"
              | Machine.Explore.Violation (_, reason) -> "VIOLATION: " ^ reason
              | Machine.Explore.Exhausted e ->
                "exhausted (" ^ Machine.Explore.exhaust_reason_name e.Machine.Explore.ex_reason
                ^ ")"
            in
            Format.printf "junk=%-8s %s (%d terminals, %d nodes)@." strategy verdict
              stats.Machine.Explore.terminals stats.Machine.Explore.nodes;
            (strategy, verdict, outcome))
          Machine.Junk.strategy_names
      in
      obs_finish ~header:stats_header ~stats:stats_flag ~tracer obs;
      let heads = List.map (fun (_, v, _) -> v) verdicts in
      (match heads with
      | v0 :: rest when List.exists (fun v -> v <> v0) rest ->
        Format.printf
          "WARNING: verdict differs across junk strategies — the algorithm's recovery \
           depends on the junk the crash produced.@."
      | _ -> ());
      let any p = List.exists (fun (_, _, o) -> p o) verdicts in
      if any (function Machine.Explore.Violation _ -> true | _ -> false) then exit 2
      else if any (function Machine.Explore.Exhausted _ -> true | _ -> false) then exit 3
    end
    else if resilient then begin
      (* budgeted / checkpointed / resumable path: Explore.sweep with a
         graceful-kill hook on SIGINT and SIGTERM *)
      let stamp =
        [
          ("scenario", name);
          ("nprocs", string_of_int nprocs);
          ("ops", string_of_int ops);
          ("max_steps", string_of_int max_steps);
          ("max_crashes", string_of_int max_crashes);
          ("dedup", string_of_bool dedup);
          ("symmetry", string_of_bool symmetry);
          ("check_mode", check_mode_name);
          ("junk", junk);
        ]
      in
      let ck_resume =
        match resume with
        | None -> None
        | Some path -> (
          match Machine.Checkpoint.load path with
          | Error msg ->
            Format.eprintf "nrlsim: cannot resume from %s: %s@." path msg;
            exit 124
          | Ok ck -> (
            match ck.Machine.Checkpoint.result with
            | Some (verdict, detail) ->
              (* the previous run finished; report its verdict, do not re-run *)
              Format.printf "checkpoint %s is final: %s%s@." path verdict
                (if detail = "" then "" else " (" ^ detail ^ ")");
              exit (if verdict = "violation" then 2 else 0)
            | None ->
              if
                List.sort compare ck.Machine.Checkpoint.scenario
                <> List.sort compare stamp
              then begin
                Format.eprintf
                  "nrlsim: checkpoint %s was taken from a different scenario@.  saved:   \
                   %s@.  current: %s@."
                  path
                  (String.concat ", "
                     (List.map (fun (k, v) -> k ^ "=" ^ v) ck.Machine.Checkpoint.scenario))
                  (String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) stamp));
                exit 124
              end;
              Some ck))
      in
      let ck_path =
        match checkpoint, resume with
        | Some p, _ -> Some p
        | None, Some p -> Some p (* keep saving where we resumed from *)
        | None, None -> None
      in
      let ck_spec =
        Option.map
          (fun cp_path ->
            {
              Machine.Explore.cp_path;
              cp_interval_s = checkpoint_interval;
              cp_scenario = stamp;
            })
          ck_path
      in
      let stop = Atomic.make false in
      let graceful _ = Atomic.set stop true in
      Sys.set_signal Sys.sigterm (Sys.Signal_handle graceful);
      Sys.set_signal Sys.sigint (Sys.Signal_handle graceful);
      let outcome, stats =
        Machine.Explore.sweep ~cfg ~jobs ~dedup ~trail ~symmetry ?obs ?progress:prog ?trace:tracer
          ~budget
          ~should_stop:(fun () -> Atomic.get stop)
          ?checkpoint:ck_spec ?resume:ck_resume ~check_mode:(mk_check_mode ())
          ~check:Workload.Check.nrl_violation (build junk)
      in
      match outcome with
      | Machine.Explore.Violation (sim, reason) ->
        obs_finish ~header:stats_header ~stats:stats_flag ~tracer obs;
        Format.printf "VIOLATION: %s@.history:@.%a@." reason History.pp
          (Machine.Sim.history sim);
        exit 2
      | Machine.Explore.Clean ->
        print_clean stats;
        obs_finish ~header:stats_header ~stats:stats_flag ~tracer obs
      | Machine.Explore.Exhausted e ->
        Format.printf
          "exhausted (%s): %d complete executions checked so far (%d truncated, %d nodes, \
           %d deduped, %d tasks pending, %.1fs)%s@."
          (Machine.Explore.exhaust_reason_name e.Machine.Explore.ex_reason)
          stats.Machine.Explore.terminals stats.Machine.Explore.truncated
          stats.Machine.Explore.nodes stats.Machine.Explore.dup
          e.Machine.Explore.ex_frontier
          (Obs.Clock.now_s () -. t0)
          (match e.Machine.Explore.ex_degraded with
          | [] -> ""
          | ds -> "; degraded: " ^ String.concat ", " ds);
        (match ck_path with
        | Some p when Sys.file_exists p ->
          Format.printf "resume with: --resume %s@." p
        | _ -> ());
        obs_finish ~header:stats_header ~stats:stats_flag ~tracer obs;
        exit 3
    end
    else begin
      (* historical unbounded path, untouched semantics *)
      let viol, stats =
        Machine.Explore.find_violation ~cfg ~jobs ~dedup ~trail ~symmetry ?obs ?progress:prog
          ?trace:tracer ~check_mode:(mk_check_mode ())
          ~check:Workload.Check.nrl_violation (build junk)
      in
      match viol with
      | Some (sim, reason) ->
        obs_finish ~header:stats_header ~stats:stats_flag ~tracer obs;
        Format.printf "VIOLATION: %s@.history:@.%a@." reason History.pp
          (Machine.Sim.history sim);
        exit 2
      | None ->
        print_clean stats;
        obs_finish ~header:stats_header ~stats:stats_flag ~tracer obs
    end
  in
  Cmd.v
    (Cmd.info "explore" ~doc:"Bounded exhaustive schedule exploration (use small instances)")
    Term.(
      const explore $ scenario_arg $ nprocs_arg $ ops_arg $ steps_arg $ crashes_arg
      $ jobs_arg $ trail_arg $ check_mode_arg $ dedup_arg $ no_symmetry_arg $ stats_arg $ trace_arg
      $ progress_arg $ deadline_arg $ max_nodes_arg $ max_visited_arg $ checkpoint_arg
      $ checkpoint_interval_arg $ resume_arg $ junk_arg)

(* fuzz *)
let fuzz_cmd =
  let kinds_arg =
    Arg.(
      value
      & opt (list string) Fuzz.Gen.base_kinds
      & info [ "kinds" ] ~docv:"KINDS"
          ~doc:
            "Comma-separated scenario kinds to fuzz: the base algorithms (register, cas, \
             tas, counter) and/or zoo mutant names (see $(b,--zoo)).")
  in
  let seeds_arg =
    Arg.(
      value & opt int 200
      & info [ "seeds" ] ~docv:"N" ~doc:"Seed indices to run (the campaign's size).")
  in
  let budget_arg =
    (* a duration: plain seconds, or with an s/m/h suffix ("120s", "2m") *)
    let budget_conv =
      let parse s =
        let num, scale =
          match String.length s with
          | 0 -> ("", 0.0)
          | n -> (
            match s.[n - 1] with
            | 's' -> (String.sub s 0 (n - 1), 1.0)
            | 'm' -> (String.sub s 0 (n - 1), 60.0)
            | 'h' -> (String.sub s 0 (n - 1), 3600.0)
            | _ -> (s, 1.0))
        in
        match float_of_string_opt num with
        | Some f when f > 0.0 && scale > 0.0 -> Ok (f *. scale)
        | _ -> Error (`Msg (Printf.sprintf "expected a duration like 30, 120s or 2m, got %S" s))
      and print ppf secs = Format.fprintf ppf "%gs" secs in
      Arg.conv (parse, print)
    in
    Arg.(
      value
      & opt (some budget_conv) None
      & info [ "budget" ] ~docv:"DURATION"
          ~doc:
            "Wall-clock budget (e.g. $(b,120s), $(b,2m)).  When it runs out the campaign \
             saves a resumable corpus and exits 3.")
  in
  let corpus_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"FILE"
          ~doc:
            "Persist the campaign to $(docv) (NDJSON, schema nrl-corpus/1, atomic \
             write-then-rename; see docs/fuzzing.md): coverage-increasing seeds, \
             violations with shrunk reproducers, and resumable progress.")
  in
  let resume_arg =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Continue from the corpus in $(b,--corpus) if it exists (its stamp must match \
             this campaign's base seed and kinds).  A finished campaign extends if \
             $(b,--seeds) is larger than what it already ran.")
  in
  let shrink_arg =
    Arg.(
      value
      & opt bool true
      & info [ "shrink" ] ~docv:"BOOL"
          ~doc:
            "Minimise every violating scenario by greedy delta-debugging (drop processes, \
             shorten scripts, remove crash points, shorten schedules) before reporting it.")
  in
  let zoo_arg =
    Arg.(
      value & flag
      & info [ "zoo" ]
          ~doc:
            "Measure detection power instead of hunting: fuzz each mutation-zoo variant \
             of Algorithms 1-4 until it is caught or the per-mutant seed budget runs \
             out.  Exits 0 only when every mutant is detected.")
  in
  let zoo_budget_arg =
    Arg.(
      value
      & opt int Fuzz.Campaign.default_zoo_budget
      & info [ "zoo-budget" ] ~docv:"N" ~doc:"Seed budget per zoo mutant.")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"DESC"
          ~doc:
            "Re-run one scenario descriptor (the kind=...,n=...,seed=... form printed for \
             every reproducer) and report its verdict.  Exits 2 if it violates.")
  in
  let fuzz kinds seeds base_seed budget corpus resume shrink zoo zoo_budget replay
      stats_flag trace progress =
    let obs = obs_of ~stats:stats_flag ~trace in
    let tracer = Option.map (fun path -> Obs.Trace.create ~path) trace in
    let finish () = obs_finish ~stats:stats_flag ~tracer obs in
    let bad fmt =
      Format.kasprintf
        (fun m ->
          Format.eprintf "nrlsim: %s@." m;
          Option.iter Obs.Trace.close tracer;
          exit 124)
        fmt
    in
    let stop = Atomic.make false in
    let graceful _ = Atomic.set stop true in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle graceful);
    Sys.set_signal Sys.sigint (Sys.Signal_handle graceful);
    let deadline = Option.map (fun b -> Obs.Clock.now_s () +. b) budget in
    let should_stop () =
      Atomic.get stop
      || match deadline with Some d -> Obs.Clock.now_s () > d | None -> false
    in
    Option.iter
      (fun tr ->
        Obs.Trace.event tr ~name:"fuzz.config"
          [
            ("kinds", Obs.Trace.Str (String.concat "," kinds));
            ("seeds", Obs.Trace.Int seeds);
            ("base_seed", Obs.Trace.Int base_seed);
            ("zoo", Obs.Trace.Bool zoo);
            ("shrink", Obs.Trace.Bool shrink);
          ])
      tracer;
    match replay with
    | Some desc_s -> (
      match Fuzz.Gen.of_string desc_s with
      | Error m -> bad "%s" m
      | Ok d -> (
        let v = Fuzz.Gen.run ?obs d in
        Format.printf "outcome: %s, %d steps@."
          (match v.Fuzz.Gen.v_outcome with
          | Machine.Schedule.Completed -> "completed"
          | Machine.Schedule.Halted -> "halted"
          | Machine.Schedule.Out_of_steps -> "out of steps")
          v.Fuzz.Gen.v_steps;
        match v.Fuzz.Gen.v_violation with
        | Some reason ->
          Format.printf "VIOLATION: %s@." reason;
          finish ();
          exit 2
        | None ->
          Format.printf "no violation@.";
          finish ()))
    | None ->
      let invalid = List.filter (fun k -> not (List.mem k Fuzz.Gen.all_kinds)) kinds in
      if invalid <> [] then
        bad "unknown kind(s): %s (known: %s)" (String.concat ", " invalid)
          (String.concat ", " Fuzz.Gen.all_kinds);
      if zoo then begin
        let dets =
          Fuzz.Campaign.zoo ?obs ?trace:tracer ~should_stop ~shrink
            ~budget_seeds:zoo_budget ~base_seed ()
        in
        List.iter (fun d -> Format.printf "%a@." Fuzz.Campaign.pp_detection d) dets;
        let missed =
          List.filter (fun d -> d.Fuzz.Campaign.z_found = None) dets |> List.length
        in
        Format.printf "%d/%d mutants detected@." (List.length dets - missed)
          (List.length dets);
        finish ();
        if should_stop () && missed > 0 then exit 3 else if missed > 0 then exit 2
      end
      else begin
        let prog = if progress then Some (Obs.Progress.create ~label:"fuzz" ()) else None in
        let cfg =
          {
            Fuzz.Campaign.base_seed;
            seeds;
            kinds;
            shrink;
            corpus_path = corpus;
            resume;
          }
        in
        match Fuzz.Campaign.run ?obs ?trace:tracer ?progress:prog ~should_stop cfg with
        | Error m -> bad "%s" m
        | Ok r ->
          let s = r.Fuzz.Campaign.r_stats in
          Format.printf
            "%s: %d runs, %d new fingerprints, %d corpus entries, %d violations%s@."
            (if r.Fuzz.Campaign.r_finished then "finished" else "stopped")
            s.Fuzz.Corpus.runs s.Fuzz.Corpus.new_coverage s.Fuzz.Corpus.corpus_entries
            s.Fuzz.Corpus.violations
            (if s.Fuzz.Corpus.shrink_steps > 0 then
               Printf.sprintf " (%d shrink steps)" s.Fuzz.Corpus.shrink_steps
             else "");
          List.iter
            (fun x ->
              Format.printf "violation at seed %d: %s@.  %s@." x.Fuzz.Corpus.x_index
                x.Fuzz.Corpus.x_reason x.Fuzz.Corpus.x_desc;
              Option.iter
                (fun shrunk ->
                  Format.printf "  shrunk: %s@.  replay with: nrlsim fuzz --replay '%s'@."
                    shrunk shrunk)
                x.Fuzz.Corpus.x_shrunk)
            r.Fuzz.Campaign.r_violations;
          (if (not r.Fuzz.Campaign.r_finished) && corpus <> None then
             match corpus with
             | Some p -> Format.printf "resume with: --corpus %s --resume@." p
             | None -> ());
          finish ();
          if r.Fuzz.Campaign.r_violations <> [] then exit 2
          else if not r.Fuzz.Campaign.r_finished then exit 3
      end
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Coverage-guided scenario fuzzing with counterexample shrinking")
    Term.(
      const fuzz $ kinds_arg $ seeds_arg $ seed_arg $ budget_arg $ corpus_arg $ resume_arg
      $ shrink_arg $ zoo_arg $ zoo_budget_arg $ replay_arg $ stats_arg $ trace_arg
      $ progress_arg)

(* theorem *)
let theorem_cmd =
  let run () =
    Format.printf "%a@." Impossibility.Theorem.pp_report
      (Impossibility.Theorem.analyze_paper_algorithm ());
    List.iter
      (fun c ->
        Format.printf "%a@." Impossibility.Theorem.pp_report
          (Impossibility.Theorem.analyze_candidate c))
      Impossibility.Candidates.all
  in
  Cmd.v (Cmd.info "theorem" ~doc:"Theorem 4 analysis") Term.(const run $ const ())

(* bench-native *)
let bench_native_cmd =
  let domains_arg =
    (* "1..4" (inclusive range) or a comma list "1,2,4" *)
    let domains_conv =
      let parse s =
        let fail () =
          Error
            (`Msg
              (Printf.sprintf
                 "expected a range like 1..4 or a comma list like 1,2,4, got %S" s))
        in
        let ints l =
          let rec go acc = function
            | [] -> Some (List.rev acc)
            | x :: rest -> (
              match int_of_string_opt (String.trim x) with
              | Some n when n >= 1 -> go (n :: acc) rest
              | _ -> None)
          in
          go [] l
        in
        match String.index_opt s '.' with
        | Some _ -> (
          match String.split_on_char '.' s with
          | [ lo; ""; hi ] | [ lo; hi ] -> (
            match ints [ lo; hi ] with
            | Some [ lo; hi ] when lo <= hi ->
              Ok (List.init (hi - lo + 1) (fun i -> lo + i))
            | _ -> fail ())
          | _ -> fail ())
        | None -> (
          match ints (String.split_on_char ',' s) with
          | Some (_ :: _ as l) -> Ok l
          | _ -> fail ())
      and print ppf l =
        Format.pp_print_string ppf (String.concat "," (List.map string_of_int l))
      in
      Arg.conv (parse, print)
    in
    Arg.(
      value
      & opt domains_conv Runtime.Bench_native.default_config.Runtime.Bench_native.domains_list
      & info [ "domains" ] ~docv:"LIST"
          ~doc:
            "Worker-domain counts to sweep: a range ($(b,1..4)) or comma list \
             ($(b,1,2,4)).  Counts above this host's domains_available still run \
             (oversubscribed) — the JSON records the honest hardware count.")
  in
  let width_arg =
    Arg.(
      value & opt int 1
      & info [ "width" ] ~docv:"W"
          ~doc:
            "Contention-array width of the contended mode (1 = every domain hammers one \
             location).  The uncontended mode always uses max(W, domains) locations.")
  in
  let duration_arg =
    Arg.(
      value & opt float 0.5
      & info [ "duration" ] ~docv:"SECS" ~doc:"Measured window per throughput cell.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the nrl-native/1 JSON document on stdout instead of the tables.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Also write the JSON document to $(docv) (e.g. BENCH_native.json).")
  in
  let bench domains_list width duration json out =
    if width < 1 then begin
      Format.eprintf "nrlsim: --width must be at least 1@.";
      exit 124
    end;
    if duration <= 0.0 then begin
      Format.eprintf "nrlsim: --duration must be positive@.";
      exit 124
    end;
    let cfg = { Runtime.Bench_native.domains_list; width; duration } in
    let log = if json then fun _ -> () else print_endline in
    if not json then
      Format.printf "domains available: %d@." (Domain.recommended_domain_count ());
    let doc = Runtime.Bench_native.run ~log cfg in
    if json then print_string (Runtime.Bench_native_json.render doc);
    Option.iter (fun path -> Runtime.Bench_native_json.write ~path doc) out
  in
  Cmd.v
    (Cmd.info "bench-native"
       ~doc:
         "Native-runtime benchmark suite: single-domain latency and allocation rows plus \
          a memento-style contended/uncontended throughput sweep (schema nrl-native/1)")
    Term.(const bench $ domains_arg $ width_arg $ duration_arg $ json_arg $ out_arg)

(* list *)
let list_cmd =
  let run () = List.iter print_endline scenario_names in
  Cmd.v (Cmd.info "list" ~doc:"List available scenarios") Term.(const run $ const ())

let () =
  let doc = "Nesting-safe recoverable linearizability: simulator and checkers" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "nrlsim" ~doc)
          [ run_cmd; check_cmd; explore_cmd; fuzz_cmd; theorem_cmd; list_cmd; bench_native_cmd ]))
